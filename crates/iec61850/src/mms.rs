//! An MMS (ISO 9506) subset over TPKT/TCP — the services the smart grid
//! cyber range exercises: initiate, getNameList, read, write (including
//! control `Oper` writes), getVariableAccessAttributes, identify, and
//! unsolicited information reports.
//!
//! The PDU structure and `Data` encodings follow MMS BER conventions
//! (confirmed-request/-response context tags, invoke ids, domain-specific
//! variable names); the session/presentation layers of the full OSI stack
//! are collapsed into TPKT framing, which is sufficient for protocol-level
//! experiments and keeps captures legible. Service numbers mirror MMS
//! (`getNameList`=1, `identify`=2, `read`=4, `write`=5,
//! `getVariableAccessAttributes`=6).

use crate::ber::{self, BerError, Element, Reader, Tag};
use crate::model::{DataModel, DataValue, ObjectRef};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The well-known MMS/ISO-over-TCP port.
pub const MMS_PORT: u16 = 102;

/// MMS `DataAccessError` codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DataAccessError {
    /// 3: access denied by policy (e.g. blocked control).
    ObjectAccessDenied = 3,
    /// 7: type mismatch on write.
    TypeInconsistent = 7,
    /// 10: the named object does not exist.
    ObjectNonExistent = 10,
}

impl DataAccessError {
    fn from_u8(b: u8) -> DataAccessError {
        match b {
            3 => DataAccessError::ObjectAccessDenied,
            7 => DataAccessError::TypeInconsistent,
            _ => DataAccessError::ObjectNonExistent,
        }
    }
}

/// A confirmed service request.
#[derive(Debug, Clone, PartialEq)]
pub enum MmsRequest {
    /// List object names: domains (`object_class` 9) or named variables
    /// within a domain (`object_class` 0).
    GetNameList {
        /// 0 = named variables, 9 = domains.
        object_class: u8,
        /// Domain scope for variable listing.
        domain: Option<String>,
    },
    /// Identify the server (vendor/model/revision).
    Identify,
    /// Read named variables (full `LD/LN$FC$…` item ids).
    Read {
        /// Items to read.
        items: Vec<String>,
    },
    /// Write named variables.
    Write {
        /// Items to write (parallel to `values`).
        items: Vec<String>,
        /// Values to write.
        values: Vec<DataValue>,
    },
    /// Ask whether a variable exists (attribute discovery).
    GetVariableAccessAttributes {
        /// Item to query.
        item: String,
    },
}

/// A confirmed service response.
#[derive(Debug, Clone, PartialEq)]
pub enum MmsResponse {
    /// Name list.
    GetNameList {
        /// Returned identifiers.
        identifiers: Vec<String>,
        /// Whether more entries exist (always `false` here).
        more_follows: bool,
    },
    /// Server identity.
    Identify {
        /// Vendor string.
        vendor: String,
        /// Model string.
        model: String,
        /// Revision string.
        revision: String,
    },
    /// Per-item read results.
    Read {
        /// Value or access error per requested item.
        results: Vec<Result<DataValue, DataAccessError>>,
    },
    /// Per-item write results.
    Write {
        /// Success or access error per written item.
        results: Vec<Result<(), DataAccessError>>,
    },
    /// Variable existence answer.
    GetVariableAccessAttributes {
        /// Whether the variable exists.
        exists: bool,
    },
}

/// A top-level MMS PDU.
#[derive(Debug, Clone, PartialEq)]
pub enum MmsPdu {
    /// Association request.
    InitiateRequest,
    /// Association response.
    InitiateResponse,
    /// Service request.
    ConfirmedRequest {
        /// Matches the response to this request.
        invoke_id: u32,
        /// The service.
        request: MmsRequest,
    },
    /// Service response.
    ConfirmedResponse {
        /// Copied from the request.
        invoke_id: u32,
        /// The result.
        response: MmsResponse,
    },
    /// Service error.
    ConfirmedError {
        /// Copied from the request.
        invoke_id: u32,
        /// Error class/code.
        error: u32,
    },
    /// Unsolicited report of `(item, value)` pairs.
    InformationReport {
        /// Report name (RCB reference).
        report_name: String,
        /// Reported entries.
        entries: Vec<(String, DataValue)>,
    },
}

const TAG_CONFIRMED_REQ: Tag = Tag::context_constructed(0);
const TAG_CONFIRMED_RESP: Tag = Tag::context_constructed(1);
const TAG_CONFIRMED_ERR: Tag = Tag::context_constructed(2);
const TAG_UNCONFIRMED: Tag = Tag::context_constructed(3);
const TAG_INITIATE_REQ: Tag = Tag::context_constructed(8);
const TAG_INITIATE_RESP: Tag = Tag::context_constructed(9);

const SVC_GET_NAME_LIST: u8 = 1;
const SVC_IDENTIFY: u8 = 2;
const SVC_READ: u8 = 4;
const SVC_WRITE: u8 = 5;
const SVC_GET_VAR_ATTRS: u8 = 6;

fn write_str(out: &mut Vec<u8>, tag: Tag, s: &str) {
    ber::write_tlv(out, tag, s.as_bytes());
}

impl MmsPdu {
    /// BER-encodes the PDU (no TPKT framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MmsPdu::InitiateRequest => ber::write_tlv(&mut out, TAG_INITIATE_REQ, &[]),
            MmsPdu::InitiateResponse => ber::write_tlv(&mut out, TAG_INITIATE_RESP, &[]),
            MmsPdu::ConfirmedRequest { invoke_id, request } => {
                let mut body = Vec::new();
                ber::write_tlv(
                    &mut body,
                    Tag::universal(0x02),
                    &ber::encode_unsigned(u64::from(*invoke_id)),
                );
                encode_request(&mut body, request);
                ber::write_tlv(&mut out, TAG_CONFIRMED_REQ, &body);
            }
            MmsPdu::ConfirmedResponse {
                invoke_id,
                response,
            } => {
                let mut body = Vec::new();
                ber::write_tlv(
                    &mut body,
                    Tag::universal(0x02),
                    &ber::encode_unsigned(u64::from(*invoke_id)),
                );
                encode_response(&mut body, response);
                ber::write_tlv(&mut out, TAG_CONFIRMED_RESP, &body);
            }
            MmsPdu::ConfirmedError { invoke_id, error } => {
                let mut body = Vec::new();
                ber::write_tlv(
                    &mut body,
                    Tag::universal(0x02),
                    &ber::encode_unsigned(u64::from(*invoke_id)),
                );
                ber::write_tlv(
                    &mut body,
                    Tag::context(0),
                    &ber::encode_unsigned(u64::from(*error)),
                );
                ber::write_tlv(&mut out, TAG_CONFIRMED_ERR, &body);
            }
            MmsPdu::InformationReport {
                report_name,
                entries,
            } => {
                let mut body = Vec::new();
                write_str(&mut body, Tag::context(0), report_name);
                let mut list = Vec::new();
                for (item, value) in entries {
                    let mut entry = Vec::new();
                    write_str(&mut entry, Tag::context(0), item);
                    value.encode(&mut entry);
                    ber::write_tlv(&mut list, Tag::SEQUENCE, &entry);
                }
                ber::write_tlv(&mut body, Tag::context_constructed(1), &list);
                ber::write_tlv(&mut out, TAG_UNCONFIRMED, &body);
            }
        }
        out
    }

    /// Decodes one PDU from raw (unframed) bytes.
    pub fn decode(data: &[u8]) -> Result<MmsPdu, BerError> {
        let mut reader = Reader::new(data);
        let el = reader.read_element()?;
        match el.tag {
            t if t == TAG_INITIATE_REQ => Ok(MmsPdu::InitiateRequest),
            t if t == TAG_INITIATE_RESP => Ok(MmsPdu::InitiateResponse),
            t if t == TAG_CONFIRMED_REQ => {
                let mut inner = Reader::new(el.contents);
                let invoke_id = inner.expect(Tag::universal(0x02))?.as_unsigned()? as u32;
                let service = inner.read_element()?;
                Ok(MmsPdu::ConfirmedRequest {
                    invoke_id,
                    request: decode_request(&service)?,
                })
            }
            t if t == TAG_CONFIRMED_RESP => {
                let mut inner = Reader::new(el.contents);
                let invoke_id = inner.expect(Tag::universal(0x02))?.as_unsigned()? as u32;
                let service = inner.read_element()?;
                Ok(MmsPdu::ConfirmedResponse {
                    invoke_id,
                    response: decode_response(&service)?,
                })
            }
            t if t == TAG_CONFIRMED_ERR => {
                let mut inner = Reader::new(el.contents);
                let invoke_id = inner.expect(Tag::universal(0x02))?.as_unsigned()? as u32;
                let error = inner.expect(Tag::context(0))?.as_unsigned()? as u32;
                Ok(MmsPdu::ConfirmedError { invoke_id, error })
            }
            t if t == TAG_UNCONFIRMED => {
                let mut inner = Reader::new(el.contents);
                let report_name = inner.expect(Tag::context(0))?.as_str()?.to_string();
                let list = inner.expect(Tag::context_constructed(1))?;
                let mut entries = Vec::new();
                for entry in list.children()? {
                    let mut er = Reader::new(entry.contents);
                    let item = er.expect(Tag::context(0))?.as_str()?.to_string();
                    let value = DataValue::decode(&er.read_element()?)?;
                    entries.push((item, value));
                }
                Ok(MmsPdu::InformationReport {
                    report_name,
                    entries,
                })
            }
            other => Err(BerError::UnexpectedTag {
                expected: TAG_CONFIRMED_REQ.0,
                found: other.0,
            }),
        }
    }
}

fn encode_request(out: &mut Vec<u8>, request: &MmsRequest) {
    match request {
        MmsRequest::GetNameList {
            object_class,
            domain,
        } => {
            let mut body = Vec::new();
            ber::write_tlv(&mut body, Tag::context(0), &[*object_class]);
            if let Some(d) = domain {
                write_str(&mut body, Tag::context(1), d);
            }
            ber::write_tlv(out, Tag::context_constructed(SVC_GET_NAME_LIST), &body);
        }
        MmsRequest::Identify => {
            ber::write_tlv(out, Tag::context_constructed(SVC_IDENTIFY), &[]);
        }
        MmsRequest::Read { items } => {
            let mut body = Vec::new();
            for item in items {
                write_str(&mut body, Tag::context(0), item);
            }
            ber::write_tlv(out, Tag::context_constructed(SVC_READ), &body);
        }
        MmsRequest::Write { items, values } => {
            let mut body = Vec::new();
            for (item, value) in items.iter().zip(values) {
                let mut pair = Vec::new();
                write_str(&mut pair, Tag::context(0), item);
                value.encode(&mut pair);
                ber::write_tlv(&mut body, Tag::SEQUENCE, &pair);
            }
            ber::write_tlv(out, Tag::context_constructed(SVC_WRITE), &body);
        }
        MmsRequest::GetVariableAccessAttributes { item } => {
            let mut body = Vec::new();
            write_str(&mut body, Tag::context(0), item);
            ber::write_tlv(out, Tag::context_constructed(SVC_GET_VAR_ATTRS), &body);
        }
    }
}

fn decode_request(el: &Element<'_>) -> Result<MmsRequest, BerError> {
    match el.tag.number() {
        SVC_GET_NAME_LIST => {
            let mut r = Reader::new(el.contents);
            let class_el = r.expect(Tag::context(0))?;
            let object_class = *class_el
                .contents
                .first()
                .ok_or(BerError::BadContent("object class"))?;
            let domain = if !r.is_empty() {
                Some(r.expect(Tag::context(1))?.as_str()?.to_string())
            } else {
                None
            };
            Ok(MmsRequest::GetNameList {
                object_class,
                domain,
            })
        }
        SVC_IDENTIFY => Ok(MmsRequest::Identify),
        SVC_READ => {
            let mut r = Reader::new(el.contents);
            let mut items = Vec::new();
            while !r.is_empty() {
                items.push(r.expect(Tag::context(0))?.as_str()?.to_string());
            }
            Ok(MmsRequest::Read { items })
        }
        SVC_WRITE => {
            let mut items = Vec::new();
            let mut values = Vec::new();
            for pair in el.children()? {
                let mut pr = Reader::new(pair.contents);
                items.push(pr.expect(Tag::context(0))?.as_str()?.to_string());
                values.push(DataValue::decode(&pr.read_element()?)?);
            }
            Ok(MmsRequest::Write { items, values })
        }
        SVC_GET_VAR_ATTRS => {
            let mut r = Reader::new(el.contents);
            let item = r.expect(Tag::context(0))?.as_str()?.to_string();
            Ok(MmsRequest::GetVariableAccessAttributes { item })
        }
        _ => Err(BerError::BadContent("unknown service")),
    }
}

fn encode_response(out: &mut Vec<u8>, response: &MmsResponse) {
    match response {
        MmsResponse::GetNameList {
            identifiers,
            more_follows,
        } => {
            let mut body = Vec::new();
            let mut list = Vec::new();
            for id in identifiers {
                write_str(&mut list, Tag::universal(0x1a), id);
            }
            ber::write_tlv(&mut body, Tag::context_constructed(0), &list);
            ber::write_tlv(&mut body, Tag::context(1), &[u8::from(*more_follows)]);
            ber::write_tlv(out, Tag::context_constructed(SVC_GET_NAME_LIST), &body);
        }
        MmsResponse::Identify {
            vendor,
            model,
            revision,
        } => {
            let mut body = Vec::new();
            write_str(&mut body, Tag::context(0), vendor);
            write_str(&mut body, Tag::context(1), model);
            write_str(&mut body, Tag::context(2), revision);
            ber::write_tlv(out, Tag::context_constructed(SVC_IDENTIFY), &body);
        }
        MmsResponse::Read { results } => {
            let mut body = Vec::new();
            for res in results {
                match res {
                    Ok(value) => value.encode(&mut body),
                    Err(code) => {
                        // data-access-error [0]
                        ber::write_tlv(&mut body, Tag::context(0), &[*code as u8]);
                    }
                }
            }
            ber::write_tlv(out, Tag::context_constructed(SVC_READ), &body);
        }
        MmsResponse::Write { results } => {
            let mut body = Vec::new();
            for res in results {
                match res {
                    Ok(()) => ber::write_tlv(&mut body, Tag::context(1), &[]),
                    Err(code) => ber::write_tlv(&mut body, Tag::context(0), &[*code as u8]),
                }
            }
            ber::write_tlv(out, Tag::context_constructed(SVC_WRITE), &body);
        }
        MmsResponse::GetVariableAccessAttributes { exists } => {
            let mut body = Vec::new();
            ber::write_tlv(&mut body, Tag::context(0), &[u8::from(*exists)]);
            ber::write_tlv(out, Tag::context_constructed(SVC_GET_VAR_ATTRS), &body);
        }
    }
}

fn decode_response(el: &Element<'_>) -> Result<MmsResponse, BerError> {
    match el.tag.number() {
        SVC_GET_NAME_LIST => {
            let mut r = Reader::new(el.contents);
            let list = r.expect(Tag::context_constructed(0))?;
            let mut identifiers = Vec::new();
            for id in list.children()? {
                identifiers.push(id.as_str()?.to_string());
            }
            let more = r.expect(Tag::context(1))?;
            Ok(MmsResponse::GetNameList {
                identifiers,
                more_follows: more.contents.first().is_some_and(|&b| b != 0),
            })
        }
        SVC_IDENTIFY => {
            let mut r = Reader::new(el.contents);
            Ok(MmsResponse::Identify {
                vendor: r.expect(Tag::context(0))?.as_str()?.to_string(),
                model: r.expect(Tag::context(1))?.as_str()?.to_string(),
                revision: r.expect(Tag::context(2))?.as_str()?.to_string(),
            })
        }
        SVC_READ => {
            let mut results = Vec::new();
            for child in el.children()? {
                if child.tag == Tag::context(0) && child.contents.len() == 1 {
                    results.push(Err(DataAccessError::from_u8(child.contents[0])));
                } else {
                    results.push(Ok(DataValue::decode(&child)?));
                }
            }
            Ok(MmsResponse::Read { results })
        }
        SVC_WRITE => {
            let mut results = Vec::new();
            for child in el.children()? {
                if child.tag == Tag::context(1) {
                    results.push(Ok(()));
                } else if child.tag == Tag::context(0) && child.contents.len() == 1 {
                    results.push(Err(DataAccessError::from_u8(child.contents[0])));
                } else {
                    return Err(BerError::BadContent("write result"));
                }
            }
            Ok(MmsResponse::Write { results })
        }
        SVC_GET_VAR_ATTRS => {
            let mut r = Reader::new(el.contents);
            let exists = r.expect(Tag::context(0))?;
            Ok(MmsResponse::GetVariableAccessAttributes {
                exists: exists.contents.first().is_some_and(|&b| b != 0),
            })
        }
        _ => Err(BerError::BadContent("unknown service response")),
    }
}

// --------------------------------------------------------------------------
// TPKT framing (RFC 1006): 0x03 0x00 <len_hi> <len_lo> <payload>.
// --------------------------------------------------------------------------

/// Wraps an encoded PDU in a TPKT frame for the TCP stream.
pub fn tpkt_frame(pdu: &[u8]) -> Vec<u8> {
    let total = pdu.len() + 4;
    let mut out = Vec::with_capacity(total);
    out.push(0x03);
    out.push(0x00);
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.extend_from_slice(pdu);
    out
}

/// Reassembles TPKT frames from TCP stream bytes.
#[derive(Debug, Default)]
pub struct TpktDecoder {
    buf: Vec<u8>,
}

impl TpktDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds stream bytes; returns complete TPKT payloads.
    pub fn feed(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            if self.buf[0] != 0x03 {
                // Desynchronized: drop a byte and retry.
                self.buf.remove(0);
                continue;
            }
            let len = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
            if len < 4 || self.buf.len() < len {
                break;
            }
            out.push(self.buf[4..len].to_vec());
            self.buf.drain(..len);
        }
        out
    }
}

// --------------------------------------------------------------------------
// Server
// --------------------------------------------------------------------------

/// A shared, mutable handle to an IED's data model (the server's backing
/// store, updated concurrently by the IED runtime).
#[derive(Debug, Clone, Default)]
pub struct SharedModel {
    inner: Arc<Mutex<DataModel>>,
}

impl SharedModel {
    /// Wraps a model.
    pub fn new(model: DataModel) -> SharedModel {
        SharedModel {
            inner: Arc::new(Mutex::new(model)),
        }
    }

    /// Runs `f` with exclusive access to the model.
    pub fn with<R>(&self, f: impl FnOnce(&mut DataModel) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Reads an item.
    pub fn read(&self, item_id: &str) -> Option<DataValue> {
        self.inner.lock().read(item_id)
    }

    /// Writes a leaf item.
    pub fn write(&self, item_id: &str, value: DataValue) -> bool {
        self.inner.lock().write(item_id, value)
    }
}

/// Decision returned by a control handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlDecision {
    /// Execute the control.
    Accept,
    /// Reject (e.g. interlock active).
    Reject,
}

/// Callback invoked when a client writes to a control object
/// (`…$CO$…$Oper$ctlVal`).
pub type ControlHandler = Box<dyn FnMut(&ObjectRef, &DataValue) -> ControlDecision + Send>;

/// The MMS server engine: executes request PDUs against a [`SharedModel`].
pub struct MmsServer {
    model: SharedModel,
    control_handler: Option<ControlHandler>,
    /// Identity reported by `identify`.
    pub identity: (String, String, String),
}

impl MmsServer {
    /// Creates a server over a shared model.
    pub fn new(model: SharedModel) -> MmsServer {
        MmsServer {
            model,
            control_handler: None,
            identity: (
                "sgcr".to_string(),
                "virtual-ied".to_string(),
                "0.1".to_string(),
            ),
        }
    }

    /// Installs the control (`Oper`) handler.
    pub fn set_control_handler(&mut self, handler: ControlHandler) {
        self.control_handler = Some(handler);
    }

    /// The shared model backing this server.
    pub fn model(&self) -> &SharedModel {
        &self.model
    }

    /// Handles one request PDU, producing the reply.
    pub fn handle(&mut self, pdu: &MmsPdu) -> Option<MmsPdu> {
        match pdu {
            MmsPdu::InitiateRequest => Some(MmsPdu::InitiateResponse),
            MmsPdu::ConfirmedRequest { invoke_id, request } => Some(MmsPdu::ConfirmedResponse {
                invoke_id: *invoke_id,
                response: self.execute(request),
            }),
            _ => None,
        }
    }

    fn execute(&mut self, request: &MmsRequest) -> MmsResponse {
        match request {
            MmsRequest::GetNameList {
                object_class,
                domain,
            } => {
                let identifiers = self.model.with(|m| match (object_class, domain) {
                    (9, _) => m.device_names(),
                    (_, Some(d)) => m.node_names(d),
                    (_, None) => m.leaf_item_ids(),
                });
                MmsResponse::GetNameList {
                    identifiers,
                    more_follows: false,
                }
            }
            MmsRequest::Identify => MmsResponse::Identify {
                vendor: self.identity.0.clone(),
                model: self.identity.1.clone(),
                revision: self.identity.2.clone(),
            },
            MmsRequest::Read { items } => {
                let results = items
                    .iter()
                    .map(|item| {
                        self.model
                            .read(item)
                            .ok_or(DataAccessError::ObjectNonExistent)
                    })
                    .collect();
                MmsResponse::Read { results }
            }
            MmsRequest::Write { items, values } => {
                let results = items
                    .iter()
                    .zip(values)
                    .map(|(item, value)| self.execute_write(item, value))
                    .collect();
                MmsResponse::Write { results }
            }
            MmsRequest::GetVariableAccessAttributes { item } => {
                MmsResponse::GetVariableAccessAttributes {
                    exists: self.model.with(|m| m.contains(item)),
                }
            }
        }
    }

    fn execute_write(&mut self, item: &str, value: &DataValue) -> Result<(), DataAccessError> {
        let Ok(object_ref) = item.parse::<ObjectRef>() else {
            return Err(DataAccessError::ObjectNonExistent);
        };
        // Control writes go to `LN$CO$<obj>$Oper$ctlVal`.
        let is_control = object_ref.fc_str == "CO"
            && object_ref.path.iter().any(|p| p == "Oper")
            && object_ref.path.last().is_some_and(|p| p == "ctlVal");
        if is_control {
            if !self.model.with(|m| m.contains(item)) {
                return Err(DataAccessError::ObjectNonExistent);
            }
            let decision = match &mut self.control_handler {
                Some(handler) => handler(&object_ref, value),
                None => ControlDecision::Accept,
            };
            return match decision {
                ControlDecision::Accept => {
                    self.model.write(item, value.clone());
                    Ok(())
                }
                ControlDecision::Reject => Err(DataAccessError::ObjectAccessDenied),
            };
        }
        // Plain writes: allowed to SP/CF/CO leaves (ST/MX are process values).
        match object_ref.fc_str.as_str() {
            "SP" | "CF" | "CO" => {
                if self.model.write(item, value.clone()) {
                    Ok(())
                } else {
                    Err(DataAccessError::ObjectNonExistent)
                }
            }
            _ => Err(DataAccessError::ObjectAccessDenied),
        }
    }
}

// --------------------------------------------------------------------------
// Client
// --------------------------------------------------------------------------

/// Client-side bookkeeping: builds framed requests and matches responses.
#[derive(Default)]
pub struct MmsClient {
    decoder: TpktDecoder,
    next_invoke: u32,
    pending: BTreeMap<u32, ()>,
}

impl MmsClient {
    /// Creates an idle client.
    pub fn new() -> MmsClient {
        MmsClient::default()
    }

    /// Builds a framed initiate request (send right after connecting).
    pub fn initiate(&mut self) -> Vec<u8> {
        tpkt_frame(&MmsPdu::InitiateRequest.encode())
    }

    /// Builds a framed confirmed request; returns `(invoke_id, bytes)`.
    pub fn request(&mut self, request: MmsRequest) -> (u32, Vec<u8>) {
        self.next_invoke += 1;
        let invoke_id = self.next_invoke;
        self.pending.insert(invoke_id, ());
        let pdu = MmsPdu::ConfirmedRequest { invoke_id, request };
        (invoke_id, tpkt_frame(&pdu.encode()))
    }

    /// Feeds received TCP bytes; returns decoded PDUs (responses, reports).
    pub fn feed(&mut self, data: &[u8]) -> Vec<MmsPdu> {
        let mut out = Vec::new();
        for payload in self.decoder.feed(data) {
            if let Ok(pdu) = MmsPdu::decode(&payload) {
                if let MmsPdu::ConfirmedResponse { invoke_id, .. }
                | MmsPdu::ConfirmedError { invoke_id, .. } = &pdu
                {
                    self.pending.remove(invoke_id);
                }
                out.push(pdu);
            }
        }
        out
    }

    /// Requests still awaiting a response.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> SharedModel {
        let mut m = DataModel::new("GIED1");
        m.insert("GIED1LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(42.0));
        m.insert("GIED1LD0/XCBR1$ST$Pos$stVal", DataValue::dbpos_on());
        m.insert("GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal", DataValue::Bool(true));
        m.insert("GIED1LD0/PTOC1$SP$StrVal$setMag$f", DataValue::Float(3.0));
        SharedModel::new(m)
    }

    #[test]
    fn pdu_roundtrips() {
        let pdus = vec![
            MmsPdu::InitiateRequest,
            MmsPdu::InitiateResponse,
            MmsPdu::ConfirmedRequest {
                invoke_id: 7,
                request: MmsRequest::Read {
                    items: vec!["LD/LN$MX$a$b".into(), "LD/LN$ST$c".into()],
                },
            },
            MmsPdu::ConfirmedRequest {
                invoke_id: 8,
                request: MmsRequest::Write {
                    items: vec!["LD/LN$CO$Pos$Oper$ctlVal".into()],
                    values: vec![DataValue::Bool(false)],
                },
            },
            MmsPdu::ConfirmedRequest {
                invoke_id: 9,
                request: MmsRequest::GetNameList {
                    object_class: 0,
                    domain: Some("GIED1LD0".into()),
                },
            },
            MmsPdu::ConfirmedRequest {
                invoke_id: 10,
                request: MmsRequest::Identify,
            },
            MmsPdu::ConfirmedResponse {
                invoke_id: 7,
                response: MmsResponse::Read {
                    results: vec![
                        Ok(DataValue::Float(1.5)),
                        Err(DataAccessError::ObjectNonExistent),
                    ],
                },
            },
            MmsPdu::ConfirmedResponse {
                invoke_id: 8,
                response: MmsResponse::Write {
                    results: vec![Ok(()), Err(DataAccessError::ObjectAccessDenied)],
                },
            },
            MmsPdu::ConfirmedError {
                invoke_id: 3,
                error: 11,
            },
            MmsPdu::InformationReport {
                report_name: "rpt1".into(),
                entries: vec![("LD/LN$ST$x".into(), DataValue::Bool(true))],
            },
        ];
        for pdu in pdus {
            let wire = pdu.encode();
            assert_eq!(MmsPdu::decode(&wire).unwrap(), pdu, "pdu {pdu:?}");
        }
    }

    #[test]
    fn tpkt_reassembly() {
        let payload1 = MmsPdu::InitiateRequest.encode();
        let payload2 = MmsPdu::InitiateResponse.encode();
        let mut stream = tpkt_frame(&payload1);
        stream.extend(tpkt_frame(&payload2));
        let mut dec = TpktDecoder::new();
        // Byte-by-byte feeding must still produce both frames.
        let mut frames = Vec::new();
        for b in stream {
            frames.extend(dec.feed(&[b]));
        }
        assert_eq!(frames, vec![payload1, payload2]);
    }

    #[test]
    fn server_read_write_namelist() {
        let mut server = MmsServer::new(sample_model());
        // Read.
        let resp = server.handle(&MmsPdu::ConfirmedRequest {
            invoke_id: 1,
            request: MmsRequest::Read {
                items: vec![
                    "GIED1LD0/MMXU1$MX$TotW$mag$f".into(),
                    "GIED1LD0/NOPE$ST$x".into(),
                ],
            },
        });
        match resp {
            Some(MmsPdu::ConfirmedResponse {
                response: MmsResponse::Read { results },
                ..
            }) => {
                assert_eq!(results[0], Ok(DataValue::Float(42.0)));
                assert_eq!(results[1], Err(DataAccessError::ObjectNonExistent));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Write to a set-point (SP): allowed.
        let resp = server.handle(&MmsPdu::ConfirmedRequest {
            invoke_id: 2,
            request: MmsRequest::Write {
                items: vec!["GIED1LD0/PTOC1$SP$StrVal$setMag$f".into()],
                values: vec![DataValue::Float(4.5)],
            },
        });
        match resp {
            Some(MmsPdu::ConfirmedResponse {
                response: MmsResponse::Write { results },
                ..
            }) => assert_eq!(results, vec![Ok(())]),
            other => panic!("unexpected {other:?}"),
        }
        // Write to a measurement (MX): denied.
        let resp = server.handle(&MmsPdu::ConfirmedRequest {
            invoke_id: 3,
            request: MmsRequest::Write {
                items: vec!["GIED1LD0/MMXU1$MX$TotW$mag$f".into()],
                values: vec![DataValue::Float(0.0)],
            },
        });
        match resp {
            Some(MmsPdu::ConfirmedResponse {
                response: MmsResponse::Write { results },
                ..
            }) => assert_eq!(results, vec![Err(DataAccessError::ObjectAccessDenied)]),
            other => panic!("unexpected {other:?}"),
        }
        // Name lists.
        let resp = server.handle(&MmsPdu::ConfirmedRequest {
            invoke_id: 4,
            request: MmsRequest::GetNameList {
                object_class: 9,
                domain: None,
            },
        });
        match resp {
            Some(MmsPdu::ConfirmedResponse {
                response: MmsResponse::GetNameList { identifiers, .. },
                ..
            }) => assert_eq!(identifiers, vec!["GIED1LD0".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_handler_gates_oper_writes() {
        let mut server = MmsServer::new(sample_model());
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        server.set_control_handler(Box::new(move |object_ref, value| {
            log2.lock().push((object_ref.to_item_id(), value.clone()));
            if value.as_bool() == Some(false) {
                ControlDecision::Reject
            } else {
                ControlDecision::Accept
            }
        }));
        let write = |server: &mut MmsServer, v: bool| {
            let resp = server.handle(&MmsPdu::ConfirmedRequest {
                invoke_id: 1,
                request: MmsRequest::Write {
                    items: vec!["GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into()],
                    values: vec![DataValue::Bool(v)],
                },
            });
            match resp {
                Some(MmsPdu::ConfirmedResponse {
                    response: MmsResponse::Write { results },
                    ..
                }) => results[0],
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(write(&mut server, true), Ok(()));
        assert_eq!(
            write(&mut server, false),
            Err(DataAccessError::ObjectAccessDenied)
        );
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn client_tracks_pending() {
        let mut client = MmsClient::new();
        let (id, wire) = client.request(MmsRequest::Identify);
        assert_eq!(client.pending_count(), 1);
        // Simulate the server answering.
        let mut server = MmsServer::new(sample_model());
        let req = MmsPdu::decode(&TpktDecoder::new().feed(&wire)[0]).unwrap();
        let resp = server.handle(&req).unwrap();
        let pdus = client.feed(&tpkt_frame(&resp.encode()));
        assert_eq!(pdus.len(), 1);
        assert!(matches!(
            &pdus[0],
            MmsPdu::ConfirmedResponse { invoke_id, .. } if *invoke_id == id
        ));
        assert_eq!(client.pending_count(), 0);
    }

    #[test]
    fn malformed_bytes_do_not_panic() {
        for garbage in [&[0u8][..], &[0xa0, 0x05, 1, 2][..], &[0xff; 40][..]] {
            let _ = MmsPdu::decode(garbage);
        }
        let mut dec = TpktDecoder::new();
        let _ = dec.feed(&[0x99, 0x03, 0x00, 0x00]);
    }
}
