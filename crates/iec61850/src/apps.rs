//! Ready-made `sgcr-net` applications: an MMS server app and a polling MMS
//! client app, used as building blocks by the virtual IED, PLC, and SCADA.

use crate::mms::{MmsClient, MmsPdu, MmsRequest, MmsServer, TpktDecoder, MMS_PORT};
use crate::model::DataValue;
use parking_lot::Mutex;
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, SocketApp};
use std::collections::HashMap;
use std::sync::Arc;

/// An MMS server listening on TCP 102, answering from an [`MmsServer`].
pub struct MmsServerApp {
    server: MmsServer,
    port: u16,
    decoders: HashMap<ConnId, TpktDecoder>,
}

impl MmsServerApp {
    /// Wraps a server engine, listening on the standard port.
    pub fn new(server: MmsServer) -> MmsServerApp {
        MmsServerApp {
            server,
            port: MMS_PORT,
            decoders: HashMap::new(),
        }
    }

    /// The underlying server engine.
    pub fn server_mut(&mut self) -> &mut MmsServer {
        &mut self.server
    }

    /// Connections currently associated with the server (report targets).
    pub fn connections(&self) -> Vec<ConnId> {
        let mut conns: Vec<ConnId> = self.decoders.keys().copied().collect();
        conns.sort();
        conns
    }
}

impl SocketApp for MmsServerApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.tcp_listen(self.port);
    }

    fn on_tcp_accepted(&mut self, _ctx: &mut HostCtx<'_>, conn: ConnId, _peer: (Ipv4Addr, u16)) {
        self.decoders.insert(conn, TpktDecoder::new());
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        let payloads = match self.decoders.get_mut(&conn) {
            Some(dec) => dec.feed(data),
            None => return,
        };
        for payload in payloads {
            let Ok(pdu) = MmsPdu::decode(&payload) else {
                continue;
            };
            if let Some(reply) = self.server.handle(&pdu) {
                ctx.tcp_send(conn, &crate::mms::tpkt_frame(&reply.encode()));
            }
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut HostCtx<'_>, conn: ConnId) {
        self.decoders.remove(&conn);
    }
}

/// Shared mailbox of responses observed by an [`MmsPollerApp`].
pub type PollResults = Arc<Mutex<Vec<(u64, String, DataValue)>>>;

/// A simple MMS client that connects to a server and polls a fixed item list
/// at a fixed period, publishing results (time-ms, item, value) to a shared
/// mailbox. Useful for tests and as the skeleton of the SCADA poller.
pub struct MmsPollerApp {
    server_ip: Ipv4Addr,
    items: Vec<String>,
    period_ms: u64,
    client: MmsClient,
    conn: Option<ConnId>,
    results: PollResults,
    outstanding: HashMap<u32, Vec<String>>,
}

impl MmsPollerApp {
    /// Creates a poller against `server_ip` reading `items` every `period_ms`.
    pub fn new(
        server_ip: Ipv4Addr,
        items: Vec<String>,
        period_ms: u64,
    ) -> (MmsPollerApp, PollResults) {
        let results: PollResults = Arc::default();
        (
            MmsPollerApp {
                server_ip,
                items,
                period_ms,
                client: MmsClient::new(),
                conn: None,
                results: results.clone(),
                outstanding: HashMap::new(),
            },
            results,
        )
    }

    fn poll(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some(conn) = self.conn {
            let (invoke_id, wire) = self.client.request(MmsRequest::Read {
                items: self.items.clone(),
            });
            self.outstanding.insert(invoke_id, self.items.clone());
            ctx.tcp_send(conn, &wire);
        }
        ctx.set_timer(sgcr_net::SimDuration::from_millis(self.period_ms), 1);
    }
}

impl SocketApp for MmsPollerApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let conn = ctx.tcp_connect(self.server_ip, MMS_PORT);
        self.conn = Some(conn);
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        let init = self.client.initiate();
        ctx.tcp_send(conn, &init);
        self.poll(ctx);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
        self.poll(ctx);
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, _conn: ConnId, data: &[u8]) {
        for pdu in self.client.feed(data) {
            if let MmsPdu::ConfirmedResponse {
                invoke_id,
                response: crate::mms::MmsResponse::Read { results },
            } = pdu
            {
                if let Some(items) = self.outstanding.remove(&invoke_id) {
                    let now = ctx.now().as_millis();
                    let mut mailbox = self.results.lock();
                    for (item, result) in items.iter().zip(results) {
                        if let Ok(value) = result {
                            mailbox.push((now, item.clone(), value));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mms::SharedModel;
    use crate::model::DataModel;
    use sgcr_net::{LinkSpec, Network, SimTime};

    #[test]
    fn mms_client_server_over_emulated_network() {
        let mut net = Network::new();
        let sw = net.add_switch("sw");
        let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
        let hmi = net.add_host("hmi", Ipv4Addr::new(10, 0, 0, 2));
        net.connect(ied, sw, LinkSpec::default());
        net.connect(hmi, sw, LinkSpec::default());

        let mut model = DataModel::new("IED1");
        model.insert("IED1LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(10.0));
        let shared = SharedModel::new(model);
        net.attach_app(
            ied,
            Box::new(MmsServerApp::new(MmsServer::new(shared.clone()))),
        );

        let (poller, results) = MmsPollerApp::new(
            Ipv4Addr::new(10, 0, 0, 1),
            vec!["IED1LD0/MMXU1$MX$TotW$mag$f".into()],
            100,
        );
        net.attach_app(hmi, Box::new(poller));

        // Run; change the "measurement" mid-way; run more.
        net.run_until(SimTime::from_millis(250));
        shared.write("IED1LD0/MMXU1$MX$TotW$mag$f", DataValue::Float(20.0));
        net.run_until(SimTime::from_millis(600));

        let observed = results.lock();
        let values: Vec<f32> = observed
            .iter()
            .filter_map(|(_, _, v)| match v {
                DataValue::Float(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert!(values.contains(&10.0), "early polls see 10.0: {values:?}");
        assert!(values.contains(&20.0), "later polls see 20.0: {values:?}");
        // Poll cadence ≈ every 100 ms over 600 ms.
        assert!(
            observed.len() >= 4,
            "expected several polls, got {}",
            observed.len()
        );
    }
}
