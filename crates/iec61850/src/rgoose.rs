//! Routable GOOSE and Routable Sampled Values (IEC TR 61850-90-5 style):
//! a thin session layer carrying GOOSE/SV APDUs over UDP for
//! inter-substation communication.
//!
//! The paper enables R-GOOSE/R-SV on virtual IEDs whose ICD defines
//! inter-substation protection (PDIF, CILO). Here the session header is a
//! simplified 90-5 shape: version, payload type, SPDU number (replay
//! detection), and SPDU length. Security (signatures) is out of scope, as in
//! the paper's range.

use sgcr_net::SimTime;

/// The UDP port used for R-GOOSE/R-SV sessions (IEC 61850-90-5 uses 102).
pub const RGOOSE_PORT: u16 = 102;

/// Payload type carried in a session packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SessionPayloadType {
    /// A GOOSE APDU (as produced by [`crate::GoosePdu::encode`]).
    Goose = 0x81,
    /// A sampled-values APDU (as produced by [`crate::SvPdu::encode`]).
    Sv = 0x82,
}

impl SessionPayloadType {
    fn from_u8(b: u8) -> Option<SessionPayloadType> {
        match b {
            0x81 => Some(SessionPayloadType::Goose),
            0x82 => Some(SessionPayloadType::Sv),
            _ => None,
        }
    }
}

/// A routable session packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPacket {
    /// What the payload is.
    pub payload_type: SessionPayloadType,
    /// Monotonic SPDU number for replay detection.
    pub spdu_num: u32,
    /// The embedded GOOSE/SV payload (APPID header + APDU).
    pub payload: Vec<u8>,
}

impl SessionPacket {
    /// Serializes to UDP payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.payload.len());
        out.push(0x01); // LI: parameter length
        out.push(0x40); // TI: transport unit data
        out.push(self.payload_type as u8);
        out.push(0x01); // session version
        out.extend_from_slice(&self.spdu_num.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses from UDP payload bytes.
    pub fn decode(data: &[u8]) -> Option<SessionPacket> {
        if data.len() < 10 || data[0] != 0x01 || data[1] != 0x40 {
            return None;
        }
        let payload_type = SessionPayloadType::from_u8(data[2])?;
        let spdu_num = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        let len = u16::from_be_bytes([data[8], data[9]]) as usize;
        let payload = data.get(10..10 + len)?.to_vec();
        Some(SessionPacket {
            payload_type,
            spdu_num,
            payload,
        })
    }
}

/// Sender-side session state: assigns SPDU numbers.
#[derive(Debug, Default)]
pub struct SessionSender {
    next_spdu: u32,
}

impl SessionSender {
    /// Creates a sender starting at SPDU 1.
    pub fn new() -> SessionSender {
        SessionSender::default()
    }

    /// Wraps a GOOSE/SV payload into the next session packet.
    pub fn wrap(&mut self, payload_type: SessionPayloadType, payload: Vec<u8>) -> SessionPacket {
        self.next_spdu = self.next_spdu.wrapping_add(1);
        SessionPacket {
            payload_type,
            spdu_num: self.next_spdu,
            payload,
        }
    }
}

/// Receiver-side session state: drops replays/stale SPDUs.
#[derive(Debug, Default)]
pub struct SessionReceiver {
    highest_spdu: Option<u32>,
    /// Packets rejected as replays (diagnostics).
    pub replays_dropped: u64,
    /// Last accepted packet time.
    pub last_rx: Option<SimTime>,
}

impl SessionReceiver {
    /// Creates an empty receiver.
    pub fn new() -> SessionReceiver {
        SessionReceiver::default()
    }

    /// Validates a packet; returns the payload if it is fresh.
    pub fn accept<'a>(
        &mut self,
        now: SimTime,
        packet: &'a SessionPacket,
    ) -> Option<&'a SessionPacket> {
        if let Some(highest) = self.highest_spdu {
            if packet.spdu_num <= highest {
                self.replays_dropped += 1;
                return None;
            }
        }
        self.highest_spdu = Some(packet.spdu_num);
        self.last_rx = Some(now);
        Some(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip() {
        let packet = SessionPacket {
            payload_type: SessionPayloadType::Goose,
            spdu_num: 77,
            payload: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(SessionPacket::decode(&packet.encode()), Some(packet));
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(SessionPacket::decode(&[]), None);
        assert_eq!(
            SessionPacket::decode(&[0x01, 0x40, 0x99, 1, 0, 0, 0, 1, 0, 0]),
            None
        );
        // Truncated payload.
        let packet = SessionPacket {
            payload_type: SessionPayloadType::Sv,
            spdu_num: 1,
            payload: vec![9; 20],
        };
        let wire = packet.encode();
        assert_eq!(SessionPacket::decode(&wire[..wire.len() - 1]), None);
    }

    #[test]
    fn sender_receiver_replay_protection() {
        let mut sender = SessionSender::new();
        let mut receiver = SessionReceiver::new();
        let now = SimTime::from_millis(1);
        let p1 = sender.wrap(SessionPayloadType::Goose, vec![1]);
        let p2 = sender.wrap(SessionPayloadType::Goose, vec![2]);
        assert!(receiver.accept(now, &p1).is_some());
        assert!(receiver.accept(now, &p2).is_some());
        // Replay of p1 is dropped.
        assert!(receiver.accept(now, &p1).is_none());
        assert_eq!(receiver.replays_dropped, 1);
    }
}
