//! GOOSE (Generic Object Oriented Substation Event) publish/subscribe:
//! PDU codec, publisher retransmission state machine, and subscriber with
//! stNum/sqNum tracking and TTL supervision.

use crate::ber::{self, BerError, Reader, Tag};
use crate::model::DataValue;
use sgcr_net::{ethertype, EthernetFrame, MacAddr, SimDuration, SimTime};

/// A GOOSE application PDU (IEC 61850-8-1 `IECGoosePdu` subset).
#[derive(Debug, Clone, PartialEq)]
pub struct GoosePdu {
    /// GOOSE control block reference (`IED/LLN0$GO$gcb1`).
    pub gocb_ref: String,
    /// Time allowed to live in milliseconds (subscriber supervision).
    pub time_allowed_to_live_ms: u32,
    /// Dataset reference.
    pub dat_set: String,
    /// GOOSE id.
    pub go_id: String,
    /// Timestamp of the last status change (simulation nanoseconds).
    pub t: u64,
    /// State number: increments on every data change.
    pub st_num: u32,
    /// Sequence number: increments on every retransmission.
    pub sq_num: u32,
    /// Simulation/test flag.
    pub simulation: bool,
    /// Configuration revision.
    pub conf_rev: u32,
    /// Needs-commissioning flag.
    pub nds_com: bool,
    /// The dataset values.
    pub all_data: Vec<DataValue>,
}

impl GoosePdu {
    /// Encodes the PDU body (the `goosePdu` APDU with its APPID header).
    pub fn encode(&self, appid: u16) -> Vec<u8> {
        let mut body = Vec::new();
        ber::write_tlv(&mut body, Tag::context(0), self.gocb_ref.as_bytes());
        ber::write_tlv(
            &mut body,
            Tag::context(1),
            &ber::encode_unsigned(u64::from(self.time_allowed_to_live_ms)),
        );
        ber::write_tlv(&mut body, Tag::context(2), self.dat_set.as_bytes());
        ber::write_tlv(&mut body, Tag::context(3), self.go_id.as_bytes());
        // Timestamp as 8 raw bytes (seconds + fraction), matching DataValue.
        let mut t_field = Vec::new();
        DataValue::Timestamp(self.t).encode(&mut t_field);
        // Re-tag the timestamp contents as [4].
        let mut reader = Reader::new(&t_field);
        let el = reader.read_element().expect("just encoded");
        ber::write_tlv(&mut body, Tag::context(4), el.contents);
        ber::write_tlv(
            &mut body,
            Tag::context(5),
            &ber::encode_unsigned(u64::from(self.st_num)),
        );
        ber::write_tlv(
            &mut body,
            Tag::context(6),
            &ber::encode_unsigned(u64::from(self.sq_num)),
        );
        ber::write_tlv(&mut body, Tag::context(7), &[u8::from(self.simulation)]);
        ber::write_tlv(
            &mut body,
            Tag::context(8),
            &ber::encode_unsigned(u64::from(self.conf_rev)),
        );
        ber::write_tlv(&mut body, Tag::context(9), &[u8::from(self.nds_com)]);
        ber::write_tlv(
            &mut body,
            Tag::context(10),
            &ber::encode_unsigned(self.all_data.len() as u64),
        );
        let mut data = Vec::new();
        for v in &self.all_data {
            v.encode(&mut data);
        }
        ber::write_tlv(&mut body, Tag::context_constructed(11), &data);

        let mut apdu = Vec::new();
        ber::write_tlv(&mut apdu, Tag::application_constructed(1), &body);

        // Ethernet payload: APPID, length, 2 reserved words, then the APDU.
        let mut out = Vec::with_capacity(8 + apdu.len());
        out.extend_from_slice(&appid.to_be_bytes());
        out.extend_from_slice(&((8 + apdu.len()) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]);
        out.extend_from_slice(&apdu);
        out
    }

    /// Decodes a GOOSE Ethernet payload; returns `(appid, pdu)`.
    pub fn decode(payload: &[u8]) -> Result<(u16, GoosePdu), BerError> {
        if payload.len() < 8 {
            return Err(BerError::Truncated);
        }
        let appid = u16::from_be_bytes([payload[0], payload[1]]);
        let mut reader = Reader::new(&payload[8..]);
        let apdu = reader.expect(Tag::application_constructed(1))?;
        let mut r = Reader::new(apdu.contents);
        let gocb_ref = r.expect(Tag::context(0))?.as_str()?.to_string();
        let ttl = r.expect(Tag::context(1))?.as_unsigned()? as u32;
        let dat_set = r.expect(Tag::context(2))?.as_str()?.to_string();
        let go_id = r.expect(Tag::context(3))?.as_str()?.to_string();
        let t_el = r.expect(Tag::context(4))?;
        // Reconstruct the timestamp from raw contents.
        let mut t_wire = Vec::new();
        ber::write_tlv(&mut t_wire, Tag::context(17), t_el.contents);
        let mut t_reader = Reader::new(&t_wire);
        let t = match DataValue::decode(&t_reader.read_element()?)? {
            DataValue::Timestamp(ns) => ns,
            _ => return Err(BerError::BadContent("goose timestamp")),
        };
        let st_num = r.expect(Tag::context(5))?.as_unsigned()? as u32;
        let sq_num = r.expect(Tag::context(6))?.as_unsigned()? as u32;
        let simulation = r.expect(Tag::context(7))?.as_bool()?;
        let conf_rev = r.expect(Tag::context(8))?.as_unsigned()? as u32;
        let nds_com = r.expect(Tag::context(9))?.as_bool()?;
        let _num_entries = r.expect(Tag::context(10))?.as_unsigned()?;
        let data_el = r.expect(Tag::context_constructed(11))?;
        let mut all_data = Vec::new();
        for child in data_el.children()? {
            all_data.push(DataValue::decode(&child)?);
        }
        Ok((
            appid,
            GoosePdu {
                gocb_ref,
                time_allowed_to_live_ms: ttl,
                dat_set,
                go_id,
                t,
                st_num,
                sq_num,
                simulation,
                conf_rev,
                nds_com,
                all_data,
            },
        ))
    }
}

/// Publisher configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GooseConfig {
    /// Control block reference.
    pub gocb_ref: String,
    /// Dataset reference.
    pub dat_set: String,
    /// GOOSE id.
    pub go_id: String,
    /// APPID (also selects the multicast MAC).
    pub appid: u16,
    /// Configuration revision.
    pub conf_rev: u32,
    /// Fastest retransmission interval after a change.
    pub min_time: SimDuration,
    /// Steady-state heartbeat interval.
    pub max_time: SimDuration,
}

impl GooseConfig {
    /// A typical protection-grade configuration (4 ms fast, 1 s heartbeat).
    pub fn new(gocb_ref: &str, dat_set: &str, go_id: &str, appid: u16) -> GooseConfig {
        GooseConfig {
            gocb_ref: gocb_ref.to_string(),
            dat_set: dat_set.to_string(),
            go_id: go_id.to_string(),
            appid,
            conf_rev: 1,
            min_time: SimDuration::from_millis(4),
            max_time: SimDuration::from_millis(1000),
        }
    }

    /// The destination multicast MAC for this APPID.
    pub fn multicast_mac(&self) -> MacAddr {
        MacAddr::goose_multicast(self.appid)
    }
}

/// Publisher state machine implementing the standard retransmission curve:
/// on change, transmissions at `min_time` doubling up to `max_time`, then a
/// steady heartbeat at `max_time`.
#[derive(Debug)]
pub struct GoosePublisher {
    /// The static configuration.
    pub config: GooseConfig,
    data: Vec<DataValue>,
    st_num: u32,
    sq_num: u32,
    t_change: u64,
    next_interval: SimDuration,
}

impl GoosePublisher {
    /// Creates a publisher with initial dataset values.
    pub fn new(config: GooseConfig, initial_data: Vec<DataValue>) -> GoosePublisher {
        let min_time = config.min_time;
        GoosePublisher {
            config,
            data: initial_data,
            st_num: 1,
            sq_num: 0,
            t_change: 0,
            next_interval: min_time,
        }
    }

    /// Current dataset values.
    pub fn data(&self) -> &[DataValue] {
        &self.data
    }

    /// Current state number.
    pub fn st_num(&self) -> u32 {
        self.st_num
    }

    /// Updates the dataset. If the values changed, the state number bumps,
    /// the sequence resets, and the retransmission curve restarts.
    /// Returns `true` if a change was detected.
    pub fn update(&mut self, now: SimTime, data: Vec<DataValue>) -> bool {
        if data == self.data {
            return false;
        }
        self.data = data;
        self.st_num = self.st_num.wrapping_add(1);
        self.sq_num = 0;
        self.t_change = now.as_nanos();
        self.next_interval = self.config.min_time;
        true
    }

    /// Builds the frame for the current (re)transmission and advances the
    /// sequence/backoff state. Call at each scheduled transmission time.
    pub fn emit(&mut self, now: SimTime, src_mac: MacAddr) -> (EthernetFrame, SimDuration) {
        let ttl_ms = (self.next_interval.as_millis() * 2).max(10) as u32;
        let pdu = GoosePdu {
            gocb_ref: self.config.gocb_ref.clone(),
            time_allowed_to_live_ms: ttl_ms,
            dat_set: self.config.dat_set.clone(),
            go_id: self.config.go_id.clone(),
            t: if self.t_change == 0 {
                now.as_nanos()
            } else {
                self.t_change
            },
            st_num: self.st_num,
            sq_num: self.sq_num,
            simulation: false,
            conf_rev: self.config.conf_rev,
            nds_com: false,
            all_data: self.data.clone(),
        };
        self.sq_num = self.sq_num.wrapping_add(1);
        let wait = self.next_interval;
        // Double toward the heartbeat interval.
        let doubled = SimDuration::from_nanos(self.next_interval.as_nanos().saturating_mul(2));
        self.next_interval = doubled.min(self.config.max_time);

        let mut frame = EthernetFrame::new(
            self.config.multicast_mac(),
            src_mac,
            ethertype::GOOSE,
            pdu.encode(self.config.appid),
        );
        frame.vlan = Some(0);
        (frame, wait)
    }
}

/// What a subscriber concluded about a received GOOSE frame.
#[derive(Debug, Clone, PartialEq)]
pub enum GooseObservation {
    /// New state (data changed): act on it.
    StateChange(GoosePdu),
    /// Retransmission of the current state.
    Retransmission(GoosePdu),
    /// Stale or replayed message (stNum went backwards).
    OutOfOrder {
        /// The stale PDU.
        pdu: GoosePdu,
        /// The highest stNum seen so far.
        expected_st_num: u32,
    },
}

/// Subscriber: filters by gocbRef, tracks stNum/sqNum, and supervises TTL.
#[derive(Debug)]
pub struct GooseSubscriber {
    /// The gocbRef to accept.
    pub gocb_ref: String,
    last_st_num: Option<u32>,
    last_rx: Option<SimTime>,
    last_ttl: SimDuration,
    /// Latest accepted dataset.
    pub data: Vec<DataValue>,
}

impl GooseSubscriber {
    /// Creates a subscriber for one control block.
    pub fn new(gocb_ref: &str) -> GooseSubscriber {
        GooseSubscriber {
            gocb_ref: gocb_ref.to_string(),
            last_st_num: None,
            last_rx: None,
            last_ttl: SimDuration::from_millis(2000),
            data: Vec::new(),
        }
    }

    /// Processes a received GOOSE frame; `None` if it is not ours.
    pub fn process(&mut self, now: SimTime, frame: &EthernetFrame) -> Option<GooseObservation> {
        if frame.ethertype != ethertype::GOOSE {
            return None;
        }
        let (_appid, pdu) = GoosePdu::decode(&frame.payload).ok()?;
        if pdu.gocb_ref != self.gocb_ref {
            return None;
        }
        self.last_rx = Some(now);
        self.last_ttl = SimDuration::from_millis(u64::from(pdu.time_allowed_to_live_ms));
        match self.last_st_num {
            Some(last) if pdu.st_num == last => {
                self.data = pdu.all_data.clone();
                Some(GooseObservation::Retransmission(pdu))
            }
            Some(last) if pdu.st_num < last => Some(GooseObservation::OutOfOrder {
                pdu,
                expected_st_num: last,
            }),
            _ => {
                self.last_st_num = Some(pdu.st_num);
                self.data = pdu.all_data.clone();
                Some(GooseObservation::StateChange(pdu))
            }
        }
    }

    /// Whether the stream's TTL has expired (publisher presumed dead).
    pub fn is_expired(&self, now: SimTime) -> bool {
        match self.last_rx {
            Some(last) => now.saturating_sub(last) > self.last_ttl + self.last_ttl,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pdu() -> GoosePdu {
        GoosePdu {
            gocb_ref: "GIED1LD0/LLN0$GO$gcb01".into(),
            time_allowed_to_live_ms: 2000,
            dat_set: "GIED1LD0/LLN0$GOOSE1".into(),
            go_id: "GIED1_GOOSE1".into(),
            t: 123_456_789_000,
            st_num: 5,
            sq_num: 2,
            simulation: false,
            conf_rev: 1,
            nds_com: false,
            all_data: vec![DataValue::Bool(true), DataValue::dbpos_on()],
        }
    }

    #[test]
    fn pdu_roundtrip() {
        let pdu = sample_pdu();
        let wire = pdu.encode(0x3001);
        let (appid, decoded) = GoosePdu::decode(&wire).unwrap();
        assert_eq!(appid, 0x3001);
        // Timestamp precision: compare within 100 ns.
        assert!((decoded.t as i128 - pdu.t as i128).abs() < 100);
        let mut norm = decoded.clone();
        norm.t = pdu.t;
        assert_eq!(norm, pdu);
    }

    #[test]
    fn truncated_pdu_rejected() {
        let wire = sample_pdu().encode(1);
        for cut in 0..wire.len().min(30) {
            assert!(GoosePdu::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn publisher_retransmission_curve() {
        let config = GooseConfig::new("gcb", "ds", "id", 1);
        let mut publisher = GoosePublisher::new(config, vec![DataValue::Bool(false)]);
        let src = MacAddr::from_index(1);
        let now = SimTime::from_millis(10);

        // First emissions double the interval: 4, 8, 16 … up to 1000 ms.
        let mut intervals = Vec::new();
        for _ in 0..12 {
            let (_, wait) = publisher.emit(now, src);
            intervals.push(wait.as_millis());
        }
        assert_eq!(&intervals[..8], &[4, 8, 16, 32, 64, 128, 256, 512]);
        assert!(intervals[8..].iter().all(|&w| w == 1000));

        // sqNum increments on retransmission; stNum stable.
        let (frame, _) = publisher.emit(now, src);
        let (_, pdu) = GoosePdu::decode(&frame.payload).unwrap();
        assert_eq!(pdu.st_num, 1);
        assert_eq!(pdu.sq_num, 12);
    }

    #[test]
    fn publisher_change_restarts_curve() {
        let config = GooseConfig::new("gcb", "ds", "id", 1);
        let mut publisher = GoosePublisher::new(config, vec![DataValue::Bool(false)]);
        let src = MacAddr::from_index(1);
        for _ in 0..5 {
            publisher.emit(SimTime::from_millis(1), src);
        }
        // No-op update: nothing changes.
        assert!(!publisher.update(SimTime::from_millis(50), vec![DataValue::Bool(false)]));
        // Real change: stNum bumps, sqNum resets, interval back to min.
        assert!(publisher.update(SimTime::from_millis(60), vec![DataValue::Bool(true)]));
        let (frame, wait) = publisher.emit(SimTime::from_millis(60), src);
        let (_, pdu) = GoosePdu::decode(&frame.payload).unwrap();
        assert_eq!(pdu.st_num, 2);
        assert_eq!(pdu.sq_num, 0);
        assert_eq!(wait.as_millis(), 4);
        // Timestamp survives the 24-bit-fraction encoding to within 100 ns.
        let expected = SimTime::from_millis(60).as_nanos() as i128;
        assert!((pdu.t as i128 - expected).abs() < 100);
    }

    #[test]
    fn subscriber_classifies_messages() {
        let config = GooseConfig::new("gcb", "ds", "id", 1);
        let mut publisher = GoosePublisher::new(config, vec![DataValue::Bool(false)]);
        let mut subscriber = GooseSubscriber::new("gcb");
        let src = MacAddr::from_index(1);
        let t = SimTime::from_millis(5);

        let (f1, _) = publisher.emit(t, src);
        assert!(matches!(
            subscriber.process(t, &f1),
            Some(GooseObservation::StateChange(_))
        ));
        let (f2, _) = publisher.emit(t, src);
        assert!(matches!(
            subscriber.process(t, &f2),
            Some(GooseObservation::Retransmission(_))
        ));
        // Replay of the first frame after a state change → out of order.
        publisher.update(t, vec![DataValue::Bool(true)]);
        let (f3, _) = publisher.emit(t, src);
        assert!(matches!(
            subscriber.process(t, &f3),
            Some(GooseObservation::StateChange(_))
        ));
        assert!(matches!(
            subscriber.process(t, &f1),
            Some(GooseObservation::OutOfOrder { .. })
        ));
        assert_eq!(subscriber.data, vec![DataValue::Bool(true)]);
    }

    #[test]
    fn subscriber_ignores_other_gocb() {
        let config = GooseConfig::new("other-gcb", "ds", "id", 1);
        let mut publisher = GoosePublisher::new(config, vec![]);
        let mut subscriber = GooseSubscriber::new("my-gcb");
        let (frame, _) = publisher.emit(SimTime::ZERO, MacAddr::from_index(1));
        assert_eq!(subscriber.process(SimTime::ZERO, &frame), None);
    }

    #[test]
    fn ttl_expiry_detection() {
        let config = GooseConfig::new("gcb", "ds", "id", 1);
        let mut publisher = GoosePublisher::new(config, vec![DataValue::Bool(true)]);
        let mut subscriber = GooseSubscriber::new("gcb");
        let (frame, _) = publisher.emit(SimTime::from_millis(0), MacAddr::from_index(1));
        subscriber.process(SimTime::from_millis(0), &frame);
        assert!(!subscriber.is_expired(SimTime::from_millis(10)));
        // TTL was ~10 ms (2x min interval); far future must be expired.
        assert!(subscriber.is_expired(SimTime::from_secs(30)));
    }
}
