//! Property tests on the IEC 61850 codecs: roundtrips for every PDU family
//! and no-panic robustness against arbitrary bytes (attack surfaces: these
//! decoders face hostile traffic inside the cyber range).

use proptest::prelude::*;
use sgcr_iec61850::ber::{self, Reader, Tag};
use sgcr_iec61850::{
    DataValue, GoosePdu, MmsPdu, MmsRequest, MmsResponse, SessionPacket, SvAsdu, SvPdu,
};

fn item_id_strategy() -> impl Strategy<Value = String> {
    ("[A-Z][A-Z0-9]{0,8}", "[A-Z]{4}[0-9]", "[A-Za-z0-9$]{1,20}")
        .prop_map(|(ld, ln, rest)| format!("{ld}LD0/{ln}$ST${rest}"))
}

fn data_value_strategy() -> impl Strategy<Value = DataValue> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(DataValue::Bool),
        any::<i64>().prop_map(DataValue::Int),
        any::<u64>().prop_map(DataValue::Uint),
        any::<f32>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(DataValue::Float),
        "[ -~]{0,24}".prop_map(DataValue::Str),
        (1u8..16, proptest::collection::vec(any::<u8>(), 1..2)).prop_map(|(bits, data)| {
            DataValue::BitString {
                bits: bits.min(8),
                data,
            }
        }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(DataValue::Struct)
    })
}

proptest! {
    #[test]
    fn ber_integer_roundtrip(v in any::<i64>()) {
        let enc = ber::encode_integer(v);
        prop_assert_eq!(ber::decode_integer(&enc), Ok(v));
    }

    #[test]
    fn ber_unsigned_roundtrip(v in any::<u64>()) {
        let enc = ber::encode_unsigned(v);
        prop_assert_eq!(ber::decode_unsigned(&enc), Ok(v));
    }

    #[test]
    fn ber_tlv_roundtrip(tag in 0u8..31, contents in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut wire = Vec::new();
        ber::write_tlv(&mut wire, Tag::context(tag), &contents);
        let mut reader = Reader::new(&wire);
        let el = reader.read_element().expect("roundtrip");
        prop_assert_eq!(el.contents, &contents[..]);
        prop_assert!(reader.is_empty());
    }

    #[test]
    fn ber_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut reader = Reader::new(&bytes);
        while let Ok(el) = reader.read_element() {
            // Exercise the accessors too.
            let _ = el.as_integer();
            let _ = el.as_str();
            let _ = el.children();
            if reader.is_empty() { break; }
        }
    }

    #[test]
    fn data_value_roundtrip(v in data_value_strategy()) {
        let mut wire = Vec::new();
        v.encode(&mut wire);
        let mut reader = Reader::new(&wire);
        let el = reader.read_element().expect("encoded element");
        let decoded = DataValue::decode(&el).expect("decodes");
        // BitString bit counts are normalized to the stored byte length.
        match (&v, &decoded) {
            (DataValue::BitString { data: a, .. }, DataValue::BitString { data: b, .. }) => {
                prop_assert_eq!(a, b);
            }
            _ => prop_assert_eq!(&v, &decoded),
        }
    }

    #[test]
    fn mms_request_roundtrip(
        invoke_id in any::<u32>(),
        items in proptest::collection::vec(item_id_strategy(), 1..5),
        values in proptest::collection::vec(data_value_strategy(), 1..5),
    ) {
        let n = items.len().min(values.len());
        let pdus = vec![
            MmsPdu::ConfirmedRequest {
                invoke_id,
                request: MmsRequest::Read { items: items.clone() },
            },
            MmsPdu::ConfirmedRequest {
                invoke_id,
                request: MmsRequest::Write {
                    items: items[..n].to_vec(),
                    values: values[..n].to_vec(),
                },
            },
            MmsPdu::ConfirmedResponse {
                invoke_id,
                response: MmsResponse::GetNameList {
                    identifiers: items.clone(),
                    more_follows: false,
                },
            },
        ];
        for pdu in pdus {
            let wire = pdu.encode();
            let decoded = MmsPdu::decode(&wire).expect("roundtrip");
            // Write payloads may contain BitStrings whose bit-count is
            // normalized; compare via re-encoding.
            prop_assert_eq!(decoded.encode(), wire);
        }
    }

    #[test]
    fn mms_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = MmsPdu::decode(&bytes);
    }

    #[test]
    fn goose_roundtrip(
        st_num in any::<u32>(),
        sq_num in any::<u32>(),
        ttl in 1u32..60000,
        data in proptest::collection::vec(any::<bool>().prop_map(DataValue::Bool), 0..6),
    ) {
        let pdu = GoosePdu {
            gocb_ref: "IEDXLD0/LLN0$GO$gcb".into(),
            time_allowed_to_live_ms: ttl,
            dat_set: "IEDXLD0/LLN0$DS".into(),
            go_id: "IEDX".into(),
            t: 55_000_000,
            st_num,
            sq_num,
            simulation: false,
            conf_rev: 1,
            nds_com: false,
            all_data: data,
        };
        let wire = pdu.encode(0x3abc);
        let (appid, decoded) = GoosePdu::decode(&wire).expect("roundtrip");
        prop_assert_eq!(appid, 0x3abc);
        prop_assert_eq!(decoded.st_num, st_num);
        prop_assert_eq!(decoded.sq_num, sq_num);
        prop_assert_eq!(decoded.all_data, pdu.all_data);
    }

    #[test]
    fn goose_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = GoosePdu::decode(&bytes);
    }

    #[test]
    fn sv_roundtrip(samples in proptest::collection::vec(
        any::<f32>().prop_filter("finite", |f| f.is_finite()), 0..12
    ), smp_cnt in any::<u16>()) {
        let pdu = SvPdu {
            asdus: vec![SvAsdu {
                sv_id: "streamX".into(),
                smp_cnt,
                conf_rev: 1,
                smp_synch: 2,
                samples: samples.clone(),
            }],
        };
        let wire = pdu.encode(0x4abc);
        let (_, decoded) = SvPdu::decode(&wire).expect("roundtrip");
        prop_assert_eq!(&decoded.asdus[0].samples, &samples);
        prop_assert_eq!(decoded.asdus[0].smp_cnt, smp_cnt);
    }

    #[test]
    fn sv_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = SvPdu::decode(&bytes);
    }

    #[test]
    fn session_packet_roundtrip(spdu in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let packet = SessionPacket {
            payload_type: sgcr_iec61850::SessionPayloadType::Goose,
            spdu_num: spdu,
            payload,
        };
        prop_assert_eq!(SessionPacket::decode(&packet.encode()), Some(packet));
    }

    #[test]
    fn session_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = SessionPacket::decode(&bytes);
    }
}
