//! Quickstart: generate the EPIC cyber range from SG-ML model files and
//! watch it run — the paper's Figure 1 architecture, live.
//!
//! ```text
//! cargo run --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== SG-ML quickstart: compiling the EPIC model set ==\n");
    let bundle = epic_bundle();
    println!(
        "input models: {} SSD, {} SCD, {} ICD, {} SED + IED/PLC/SCADA/power configs",
        bundle.ssds.len(),
        bundle.scds.len(),
        bundle.icds.len(),
        bundle.seds.len()
    );

    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle)?)?;
    println!("\n{}\n", range.summary());

    println!("cyber topology (hosts):");
    for host in &range.plan().hosts {
        println!(
            "  {:10} {:12} on {}",
            host.name,
            host.ip.to_string(),
            host.switch
        );
    }
    println!("\npower model:");
    for bus in &range.power.bus {
        println!("  bus  {:28} {} kV", bus.name, bus.vn_kv);
    }
    for line in &range.power.line {
        println!("  line {:28} {} km", line.name, line.length_km);
    }

    println!("\nrunning 3 s of co-simulated time (100 ms power-flow steps)…");
    range.run_for(SimDuration::from_secs(3));

    let scada = range.scada.as_ref().expect("EPIC has an HMI");
    println!("\nSCADA tag database after 3 s:");
    for tag in scada.tag_names() {
        println!(
            "  {:16} = {:?}",
            tag,
            scada.tag_value(&tag).map(|v| (v * 1000.0).round() / 1000.0)
        );
    }
    println!("\nHMI event log:");
    for event in scada.events() {
        println!("  [{:>6} ms] {}", event.time_ms, event.message);
    }
    println!(
        "\nPLC CPLC: {} scans, fault: {:?}",
        range.plcs["CPLC"].lock().scans,
        range.plcs["CPLC"].lock().fault
    );
    println!("done.");
    Ok(())
}
