//! Captures live traffic inside the EPIC range and writes a Wireshark-ready
//! pcap — the traffic-analysis workflow of a cyber range training session.
//!
//! ```text
//! cargo run --example capture_traffic -- /tmp/epic.pcap
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::attack::CaptureSummary;
use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{pcap, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "epic-capture.pcap".to_string());
    let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;

    // Tap the SCADA workstation and one IED.
    let scada = range.node("SCADA").expect("SCADA host");
    let gied1 = range.node("GIED1").expect("GIED1 host");
    range.net.enable_capture(scada);
    range.net.enable_capture(gied1);

    println!("running 5 s with capture taps on SCADA and GIED1…");
    range.run_for(SimDuration::from_secs(5));

    for (name, node) in [("SCADA", scada), ("GIED1", gied1)] {
        let frames = range.net.captured(node);
        println!("{name}: {}", CaptureSummary::of(frames));
    }

    let frames = range.net.captured(scada);
    std::fs::write(&out, pcap::to_pcap(frames))?;
    println!(
        "\nwrote {} frames to {out} — open with `wireshark {out}`",
        frames.len()
    );
    Ok(())
}
