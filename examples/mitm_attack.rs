//! Man-in-the-middle case study (paper §IV-B, Figure 6): ARP spoofing
//! between the SCADA HMI and an IED, rewriting measurements in flight —
//! the HMI displays falsified values while the grid truth is unchanged.
//!
//! ```text
//! cargo run --example mitm_attack
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::attack::{MitmApp, MitmPlan, Transform};
use sg_cyber_range::core::CyberRange;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{Ipv4Addr, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut range = CyberRange::generate(&epic_bundle())?;
    println!("== ARP-spoofing MITM on the EPIC range (Figure 6) ==\n");

    range.add_host("mitm-box", Ipv4Addr::new(10, 0, 5, 66), "ControlBus");
    let scada_ip = range.plan.host_ip("SCADA").unwrap();
    let tied1_ip = range.plan.host_ip("TIED1").unwrap();
    let (mitm, handle) = MitmApp::new(MitmPlan {
        victim_a: scada_ip,
        victim_b: tied1_ip,
        start_ms: 4_000,
        stop_ms: 10_000,
        transform: Transform::ScaleMmsFloats(10.0),
    });
    range.attach_app("mitm-box", Box::new(mitm));
    println!("attacker at 10.0.5.66; poisoning SCADA<->TIED1 from t=4s to t=10s");
    println!("transform: scale every MMS float x10 (false data injection)\n");

    println!(
        "{:>6}  {:>12}  {:>12}  phase",
        "t [s]", "true [MW]", "HMI [MW]"
    );
    let scada = range.scada.as_ref().unwrap().clone();
    for step in 1..=14 {
        range.run_for(SimDuration::from_secs(1));
        let truth = range
            .store
            .get_float("meas/EPIC/branch/LMicro/p_mw")
            .unwrap_or(0.0);
        let shown = scada.tag_value("MicroFeeder_MW").unwrap_or(f64::NAN);
        let phase = match step {
            0..=3 => "before attack",
            4..=9 => "ATTACK ACTIVE",
            _ => "after re-ARP repair",
        };
        println!("{step:>6}  {truth:>12.5}  {shown:>12.5}  {phase}");
    }

    let report = handle.lock().clone();
    println!("\nattacker statistics: {report:?}");
    Ok(())
}
