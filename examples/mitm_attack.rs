//! Man-in-the-middle case study (paper §IV-B, Figure 6), expressed as a
//! declarative exercise scenario: ARP spoofing between the SCADA HMI and an
//! IED, rewriting measurements in flight — the HMI displays falsified
//! values while the grid truth is unchanged. The staging and scoring live
//! in `examples/scenarios/epic_mitm.scenario.xml`.
//!
//! ```text
//! cargo run --example mitm_attack
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::scenario::{run_exercise, Scenario};

const SCENARIO_XML: &str = include_str!("scenarios/epic_mitm.scenario.xml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::parse(SCENARIO_XML)?;
    let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
    println!("== ARP-spoofing MITM on the EPIC range (Figure 6) ==");
    println!(
        "scenario {:?}: {} stages, {} objectives, {} ms\n",
        scenario.name,
        scenario.stages.len(),
        scenario.objectives.len(),
        scenario.duration_ms
    );

    let report = run_exercise(&mut range, &scenario)?;
    print!("{}", report.to_text());

    // Deception, quantified: the displayed value against the ground truth.
    let truth = range
        .store
        .get_float("meas/EPIC/bus/LV.MicroBay.CN_MICRO/vm_pu")
        .unwrap_or(f64::NAN);
    let scada = range.scada.as_ref().unwrap();
    let shown = scada.tag_value("MicroVolt_pu");
    println!("\nat exercise end (after re-ARP repair):");
    println!("  true micro-grid voltage: {truth:.4} pu");
    println!("  HMI displayed value:     {shown:?}");
    Ok(())
}
