//! Multi-substation cyber range: generates the paper's 5-substation /
//! 104-IED scalability model from SSD+SED files, runs it, and reports
//! per-step timing against the 100 ms real-time budget.
//!
//! ```text
//! cargo run --release --example multi_substation
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::{multisub_bundle, MultiSubParams};
use sg_cyber_range::net::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = MultiSubParams::paper_profile();
    println!(
        "== multi-substation range: {} substations, {} IEDs, {} ms interval ==\n",
        params.substations, params.total_ieds, params.interval_ms
    );

    let generate_start = std::time::Instant::now();
    let mut range = CyberRange::instantiate(CompiledModel::shared(&multisub_bundle(&params))?)?;
    println!(
        "generated in {:.2} s: {}",
        generate_start.elapsed().as_secs_f64(),
        range.summary()
    );

    println!("\nrunning 5 s of co-simulated time…");
    let wall = std::time::Instant::now();
    range.run_for(SimDuration::from_secs(5));
    let wall = wall.elapsed().as_secs_f64();

    let steps = range.step_stats().len();
    let mean_step: f64 =
        range.step_stats().map(|s| s.total_seconds).sum::<f64>() / steps.max(1) as f64;
    let max_step = range
        .step_stats()
        .map(|s| s.total_seconds)
        .fold(0.0f64, f64::max);
    let budget = params.interval_ms as f64 / 1000.0;
    println!("\n{steps} steps in {wall:.2} s wall clock");
    println!(
        "  mean step: {:.2} ms (budget {} ms)",
        mean_step * 1e3,
        params.interval_ms
    );
    println!("  max step:  {:.2} ms", max_step * 1e3);
    println!(
        "  real-time factor: {:.1}x (>1 means faster than real time)",
        budget * steps as f64 / wall
    );

    // The operator's view spans all substations over the WAN.
    let scada = range.scada.as_ref().unwrap();
    println!("\nSCADA tags (first IED of each substation):");
    for tag in scada.tag_names() {
        println!("  {:12} = {:?} MW", tag, scada.tag_value(&tag));
    }
    Ok(())
}
