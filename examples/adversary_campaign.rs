//! Autonomous adversary campaign on the EPIC range: instead of hand-writing
//! attack stages, the scenario declares only a *goal* — the seeded planner
//! derives the attack graph from the compiled model, picks a path, and
//! expands it into a scored multi-stage campaign
//! (`examples/scenarios/epic_adversary.scenario.xml` carries nothing but an
//! `<Adversary>` element and one baseline objective).
//!
//! ```text
//! cargo run --example adversary_campaign
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::adversary::{plan, AttackGraph, PlanRequest};
use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::scenario::{run_exercise, Scenario};

const SCENARIO_XML: &str = include_str!("scenarios/epic_adversary.scenario.xml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle = epic_bundle();
    let model = CompiledModel::shared(&bundle)?;
    let scenario = Scenario::parse(SCENARIO_XML)?;
    let adv = scenario
        .adversary
        .as_ref()
        .expect("scenario declares an adversary");

    println!("== Autonomous adversary on the EPIC range ==");
    println!(
        "goal {:?}, budget {} actions, seed {}\n",
        adv.goal, adv.budget, adv.seed
    );

    // What the planner sees: the attack graph derived from the same
    // compiled model the range instantiates from.
    let graph = AttackGraph::derive(&model);
    println!(
        "attack graph: {} nodes, {} edges (try `sgml_processor attack-graph <bundle> --format dot`)",
        graph.nodes.len(),
        graph.edges.len()
    );

    // The campaign the seeded planner commits to — the exercise engine
    // replans this identically from the <Adversary> element below.
    let campaign = plan(
        &graph,
        &PlanRequest {
            goal: &adv.goal,
            budget: adv.budget,
            seed: adv.seed,
            ..PlanRequest::default()
        },
    )?;
    println!("\nplanned campaign ({} stages):", campaign.steps.len());
    for step in &campaign.steps {
        println!("  {:<12} {:?}", step.id, step.action.kind());
    }

    let mut range = CyberRange::instantiate(model)?;
    let report = run_exercise(&mut range, &scenario)?;
    println!();
    print!("{}", report.to_text());

    // The goal objective is scored like any hand-written one.
    println!("\nphysical impact:");
    let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
    println!("  CB_GEN closed: {}", range.power.switch[cb.index()].closed);
    Ok(())
}
