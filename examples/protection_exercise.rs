//! Protection exercise: drives each of the paper's Table-II protection
//! functions across its threshold inside the running EPIC range — the kind
//! of hands-on training scenario the cyber range is built for.
//!
//! ```text
//! cargo run --example protection_exercise
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::ied::IedEventKind;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Protection exercise on the EPIC range ==\n");

    // --- Scenario 1: over-current on the smart-home feeder (PTOC) --------
    {
        let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
        range.run_for(SimDuration::from_secs(1));
        println!("scenario 1: smart-home feeder overload → TIED2 PTOC");
        let i_before = range
            .store
            .get_float("meas/EPIC/branch/LHome/i_ka")
            .unwrap_or(0.0);
        println!(
            "  nominal feeder current: {:.4} kA (pickup 0.120 kA)",
            i_before
        );
        let load = range.power.load_by_name("EPIC/Load1").unwrap();
        range.power.load[load.index()].p_mw = 0.2;
        println!("  t=1s: load jumps to 0.2 MW…");
        range.run_for(SimDuration::from_secs(3));
        for event in range.ieds["TIED2"].events() {
            println!(
                "  TIED2 [{:>6} ms] {:?} {}",
                event.time_ms, event.kind, event.detail
            );
        }
        let home = range.power.bus_by_name("EPIC/LV/HomeBay/CN_HOME").unwrap();
        println!(
            "  smart-home bus energized: {}\n",
            range.last_result.bus[home.index()].energized
        );
    }

    // --- Scenario 2: over-voltage at generation (PTOV) --------------------
    {
        let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
        range.run_for(SimDuration::from_secs(1));
        println!("scenario 2: generator voltage excursion → GIED2 PTOV");
        for gen in range.power.gen.iter_mut() {
            gen.vm_pu = 1.15; // AVR runaway
        }
        println!("  t=1s: generator set-points forced to 1.15 pu (limit 1.10)…");
        range.run_for(SimDuration::from_secs(2));
        for event in range.ieds["GIED2"].events() {
            println!(
                "  GIED2 [{:>6} ms] {:?} {}",
                event.time_ms, event.kind, event.detail
            );
        }
        println!();
    }

    // --- Scenario 3: micro-grid undervoltage (PTUV) -----------------------
    {
        let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
        range.run_for(SimDuration::from_secs(1));
        println!("scenario 3: depressed micro-grid voltage → MIED1 PTUV");
        for gen in range.power.gen.iter_mut() {
            gen.vm_pu = 0.86; // severe source undervoltage, below the 0.88 limit
        }
        println!("  t=1s: source voltage forced to 0.86 pu (limit 0.88)…");
        range.run_for(SimDuration::from_secs(2));
        for event in range.ieds["MIED1"].events() {
            println!(
                "  MIED1 [{:>6} ms] {:?} {}",
                event.time_ms, event.kind, event.detail
            );
        }
        println!();
    }

    // --- Scenario 4: interlock (CILO) --------------------------------------
    {
        let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
        println!("scenario 4: SIED1 close command blocked by CILO until CB_HOME closes");
        // Open CB_HOME first.
        range.store.set(
            "cmd/EPIC/cb/CB_HOME/close",
            sg_cyber_range::kvstore::Value::Bool(false),
        );
        range.run_for(SimDuration::from_secs(2));
        let ena = range.ieds["SIED1"]
            .model
            .read("SIED1LD0/CILO1$ST$EnaCls$stVal");
        println!("  with CB_HOME open: EnaCls = {ena:?}");
        range.store.set(
            "cmd/EPIC/cb/CB_HOME/close",
            sg_cyber_range::kvstore::Value::Bool(true),
        );
        range.run_for(SimDuration::from_secs(3));
        let ena = range.ieds["SIED1"]
            .model
            .read("SIED1LD0/CILO1$ST$EnaCls$stVal");
        println!("  after CB_HOME closes (state via GOOSE): EnaCls = {ena:?}");
        let rejected = range.ieds["SIED1"].events_of(IedEventKind::ControlRejected);
        println!("  control rejections recorded: {}", rejected.len());
    }

    Ok(())
}
