//! False Command Injection case study (paper §IV-B), expressed as a
//! declarative exercise scenario: the staging, timing, objectives, and
//! scoring all live in `examples/scenarios/epic_fci.scenario.xml` — this
//! program just loads the scenario, runs it through `sgcr-scenario`, and
//! prints the scored after-action report.
//!
//! ```text
//! cargo run --example fci_attack
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::scenario::{run_exercise, Scenario};

const SCENARIO_XML: &str = include_str!("scenarios/epic_fci.scenario.xml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::parse(SCENARIO_XML)?;
    let mut range = CyberRange::instantiate(CompiledModel::shared(&epic_bundle())?)?;
    println!("== False Command Injection on the EPIC range ==");
    println!(
        "scenario {:?}: {} stages, {} objectives, {} ms\n",
        scenario.name,
        scenario.stages.len(),
        scenario.objectives.len(),
        scenario.duration_ms
    );

    let report = run_exercise(&mut range, &scenario)?;
    print!("{}", report.to_text());

    // The report scores the exercise; the range itself still holds the full
    // post-incident state for deeper forensics.
    println!("\nphysical impact:");
    let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
    println!("  CB_GEN closed: {}", range.power.switch[cb.index()].closed);
    let scada = range.scada.as_ref().unwrap();
    println!("\noperator's view (SCADA):");
    println!("  CB_GEN feedback: {:?}", scada.tag_value("CB_GEN_fb"));
    println!("  Gen feeder kW:   {:?}", scada.tag_value("GenFeeder_kW"));
    println!("\nGIED1 sequence of events:");
    for event in range.ieds["GIED1"].events() {
        println!(
            "  [{:>6} ms] {:?} {}",
            event.time_ms, event.kind, event.detail
        );
    }
    Ok(())
}
