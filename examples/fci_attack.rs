//! False Command Injection case study (paper §IV-B): a compromised node on
//! the generation segment interrogates GIED1 over MMS and injects a forged
//! breaker-open command; the power flow reacts and SCADA sees the outage.
//!
//! ```text
//! cargo run --example fci_attack
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::attack::{FciAttackApp, FciPlan};
use sg_cyber_range::core::CyberRange;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{Ipv4Addr, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut range = CyberRange::generate(&epic_bundle())?;
    println!("== False Command Injection on the EPIC range ==\n");

    range.run_for(SimDuration::from_secs(1));
    println!(
        "t=1s   LGen feeder power: {:+.4} MW (CB_GEN closed)",
        range.last_result.line[0].p_from_mw
    );

    // The attacker compromises an engineering workstation on GenBus.
    range.add_host("malware-host", Ipv4Addr::new(10, 0, 1, 66), "GenBus");
    let victim = range.plan.host_ip("GIED1").expect("GIED1 in plan");
    let (attack, report) = FciAttackApp::new(FciPlan {
        victim,
        item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
        value: false, // forged OPEN command
        at_ms: 2_000,
        interrogate: true,
    });
    range.attach_app("malware-host", Box::new(attack));
    println!("t=1s   malware-host attached at 10.0.1.66, strike scheduled for t=2s");

    range.run_for(SimDuration::from_secs(3));

    let report = report.lock().clone();
    println!("\nattacker's view:");
    println!(
        "  interrogation listed {} items, e.g.:",
        report.discovered_items.len()
    );
    for item in report.discovered_items.iter().take(5) {
        println!("    {item}");
    }
    println!(
        "  forged command accepted: {:?} at t={:?} ms",
        report.command_accepted, report.completed_at_ms
    );

    println!("\nphysical impact:");
    println!(
        "  LGen feeder in service: {}",
        range.last_result.line[0].in_service
    );
    let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
    println!("  CB_GEN closed: {}", range.power.switch[cb.index()].closed);

    let scada = range.scada.as_ref().unwrap();
    println!("\noperator's view (SCADA):");
    println!("  CB_GEN feedback: {:?}", scada.tag_value("CB_GEN_fb"));
    println!("  Gen feeder kW:   {:?}", scada.tag_value("GenFeeder_kW"));
    println!("\nGIED1 sequence of events:");
    for event in range.ieds["GIED1"].events() {
        println!(
            "  [{:>6} ms] {:?} {}",
            event.time_ms, event.kind, event.detail
        );
    }
    Ok(())
}
