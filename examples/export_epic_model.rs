//! Exports the EPIC SG-ML model set to a directory, for use with the
//! `sgml_processor` CLI or for manual editing and sharing.
//!
//! ```text
//! cargo run --example export_epic_model -- /tmp/epic-bundle
//! ```

use sg_cyber_range::models::epic_bundle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "epic-bundle".to_string());
    epic_bundle().write_to_dir(&dir)?;
    println!("wrote the EPIC SG-ML model set to {dir}/");
    for entry in std::fs::read_dir(&dir)? {
        println!("  {}", entry?.file_name().to_string_lossy());
    }
    println!("try: cargo run --bin sgml_processor -- run {dir} --seconds 3");
    Ok(())
}
