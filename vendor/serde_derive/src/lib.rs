//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! type-level annotation; nothing in-tree calls serde's serialization APIs.
//! These derives therefore expand to nothing, while still registering the
//! `#[serde(...)]` helper attribute so annotated fields keep compiling.

use proc_macro::TokenStream;

/// No-op derive for `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
