//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic xorshift64* generator behind a minimal subset of
//! the `rand` API (`thread_rng`, `Rng::gen`/`gen_range`, `SeedableRng`).
//! Nothing in the workspace draws cryptographic randomness from it.

use std::cell::Cell;

/// Minimal RNG trait mirroring the parts of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Generates a value of a supported primitive type.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Generates a value uniformly in `[low, high)`.
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Types producible directly from raw RNG output.
pub trait FromRng {
    /// Draws one value from the generator.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64::from_rng(rng) as f32
    }
}

/// Types samplable uniformly from a half-open range.
pub trait RangeSample: Copy {
    /// Draws a value in `[low, high)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::from_rng(rng) * (high - low)
    }
}

impl RangeSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f32::from_rng(rng) * (high - low)
    }
}

/// Mirror of `rand::SeedableRng` for the deterministic generator below.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

thread_local! {
    static THREAD_SEED: Cell<u64> = const { Cell::new(0x853c49e6748fea9b) };
}

/// A per-thread generator; deterministic in this offline stand-in.
#[derive(Debug)]
pub struct ThreadRng {
    inner: StdRng,
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl Drop for ThreadRng {
    fn drop(&mut self) {
        THREAD_SEED.with(|s| s.set(self.inner.state));
    }
}

/// Returns the thread-local generator (deterministic sequence per thread).
pub fn thread_rng() -> ThreadRng {
    let seed = THREAD_SEED.with(|s| s.get());
    ThreadRng {
        inner: StdRng {
            state: seed.wrapping_add(0x9e3779b9) | 1,
        },
    }
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use super::{StdRng, ThreadRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..256 {
            let v: i32 = rng.gen_range(-5..9);
            assert!((-5..9).contains(&v));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }
}
