//! Offline stand-in for the `proptest` crate.
//!
//! A compact, deterministic property-testing framework implementing the
//! subset of proptest's API that this workspace's test suites use:
//! `proptest!`, `prop_oneof!`, the `Strategy` combinators (`prop_map`,
//! `prop_filter`, `prop_recursive`, `boxed`), `any::<T>()`, range and
//! regex-like string strategies, `collection::vec`, `option::of`, `Just`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test name (no wall clock in this environment), and failing
//! cases are reported without shrinking.

pub mod test_runner {
    //! Deterministic case runner and configuration.

    /// Per-test RNG (xorshift64*), seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from an arbitrary byte string.
        pub fn from_name(name: &str) -> TestRng {
            let mut seed = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Runner configuration; mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated; the test fails.
        Fail(String),
        /// The case was vetoed by `prop_assume!`; another case is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runs `case` until `config.cases` cases pass; panics on the first
    /// failure or when rejection dominates.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let reject_cap = u64::from(config.cases) * 16 + 1024;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_cap,
                        "proptest '{name}': too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed after {passed} passing cases: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait, combinators, and primitive strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to each generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`, redrawing instead.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Builds a recursive strategy: `self` is the leaf case, `recurse`
        /// wraps an inner strategy into the branching case, and `depth`
        /// bounds nesting. `desired_size`/`expected_branch_size` are
        /// accepted for API parity and unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                let shallow = leaf.clone();
                strat = BoxedStrategy::new(move |rng| {
                    // Occasionally cut to a leaf so trees vary in depth.
                    if rng.below(4) == 0 {
                        shallow.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            strat
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let this = self;
            BoxedStrategy::new(move |rng| this.generate(rng))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn new(gen: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy { gen: Rc::new(gen) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive draws",
                self.reason
            )
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type.
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Types with a canonical strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text XML-safe by default.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> AnyStrategy<T> {
            AnyStrategy {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`; mirrors `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    macro_rules! strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! strategy_for_int_range_inclusive {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    strategy_for_int_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! strategy_for_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    strategy_for_float_range!(f32, f64);

    macro_rules! strategy_for_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    strategy_for_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // --- regex-subset string strategies -----------------------------------
    //
    // String literals act as strategies generating matching strings. The
    // supported grammar covers the patterns used in this workspace: a
    // sequence of literal characters or `[...]` classes (with `a-z` ranges),
    // each optionally quantified by `{n}` or `{n,m}`.

    #[derive(Debug, Clone)]
    struct PatternPiece {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut out = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' && i + 1 < chars.len() {
                out.push(chars[i + 1]);
                i += 2;
            } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "bad range {lo}-{hi} in pattern class");
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        (out, i + 1) // skip ']'
    }

    fn parse_quantifier(chars: &[char], mut i: usize) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        i += 1;
        let mut min = 0usize;
        while i < chars.len() && chars[i].is_ascii_digit() {
            min = min * 10 + (chars[i] as usize - '0' as usize);
            i += 1;
        }
        let max = if i < chars.len() && chars[i] == ',' {
            i += 1;
            let mut m = 0usize;
            while i < chars.len() && chars[i].is_ascii_digit() {
                m = m * 10 + (chars[i] as usize - '0' as usize);
                i += 1;
            }
            m
        } else {
            min
        };
        assert!(
            i < chars.len() && chars[i] == '}',
            "unterminated quantifier in pattern"
        );
        (min, max, i + 1)
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let choices = if chars[i] == '[' {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            assert!(
                !choices.is_empty(),
                "empty character class in pattern '{pattern}'"
            );
            let (min, max, next) = parse_quantifier(&chars, i);
            i = next;
            pieces.push(PatternPiece { choices, min, max });
        }
        pieces
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..count {
                    out.push(piece.choices[rng.below(piece.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of values from `element` with length in a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.len.start < self.len.end,
                "empty length range for vec strategy"
            );
            let span = (self.len.end - self.len.start) as u64;
            let count = self.len.start + rng.below(span) as usize;
            (0..count).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` a quarter of the time, else `Some(inner)`.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps a strategy to produce optional values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Uniform choice between strategies; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`"
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`: {}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  left: `{left:?}`\n right: `{right:?}`"
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = crate::test_runner::TestRng::from_name("pattern");
        for _ in 0..64 {
            let s = Strategy::generate(&"[A-Z]{4}[0-9]", &mut rng);
            assert_eq!(s.len(), 5);
            assert!(s[..4].chars().all(|c| c.is_ascii_uppercase()));
            assert!(s[4..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("range");
        for _ in 0..256 {
            let v = Strategy::generate(&(-10i32..10), &mut rng);
            assert!((-10..10).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        fn oneof_and_just(x in prop_oneof![Just(1i32), Just(2), 10i32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        fn assume_rejects(x in 0u8..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        fn recursive_bounded(t in tree()) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[derive(Debug, Clone)]
    enum T {
        Leaf(#[allow(dead_code)] u8),
        Node(Vec<T>),
    }

    fn tree() -> impl Strategy<Value = T> {
        any::<u8>()
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            })
    }

    fn depth(t: &T) -> u32 {
        match t {
            T::Leaf(_) => 1,
            T::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }
}
