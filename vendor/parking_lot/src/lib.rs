//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape: locks do
//! not return poisoning `Result`s. A poisoned std lock (a thread panicked
//! while holding it) is recovered by taking the inner guard, matching
//! `parking_lot`'s no-poisoning semantics.

use std::sync;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
