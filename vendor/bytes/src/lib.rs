//! Offline stand-in for the `bytes` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal, API-compatible implementations of the
//! external crates it consumes. This one provides [`Bytes`]: a cheaply
//! cloneable, immutable, contiguous byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer (reference-counted).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the buffer out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                other => write!(f, "\\x{other:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Bytes::from(vec![9u8]), Bytes::copy_from_slice(&[9]));
        assert_eq!(Bytes::from_static(b"xy").to_vec(), b"xy".to_vec());
    }
}
