//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as type-level
//! annotations — no serialization calls are made — so this stub provides
//! marker traits and no-op derive macros that satisfy the derives.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
