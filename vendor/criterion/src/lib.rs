//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `bench_function`, `benchmark_group`/`bench_with_input`, `criterion_group!`
//! and `criterion_main!` — with a simple wall-clock timer instead of
//! criterion's statistical machinery. Good enough to run the benches and
//! print per-iteration timings; not a measurement-quality harness.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timer handed to bench closures; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up round so first-touch effects don't dominate.
        hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier; mirrors `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters: iters.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b
        .elapsed
        .checked_div(b.iters as u32)
        .unwrap_or(Duration::ZERO);
    println!(
        "bench {label:<40} {:>12}/iter  ({} iters)",
        format_duration(per_iter),
        b.iters
    );
}

impl Criterion {
    /// Sets the iteration count used per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Sets the target measurement time (accepted, unused in this stand-in).
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Final-summary hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n as u64;
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.parent.sample_size, |b| f(b, input));
        self
    }

    /// Runs an unparameterized benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.parent.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // iter runs 1 warm-up + sample_size timed iterations
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(5), &7u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert_eq!(total, 21);
    }
}
